"""FederatedTrainer: the aggregator round loop."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.data import build_federation
from repro.fl import (
    ExactFractionStragglers,
    FederatedTrainer,
    FLJobConfig,
    LocalTrainingConfig,
    make_algorithm,
)
from repro.ml import make_model
from repro.selection import RandomSelection, SelectionStrategy


class RecordingStrategy(SelectionStrategy):
    """Deterministic strategy that logs everything it is told."""

    name = "recording"

    def __init__(self, cohort):
        super().__init__()
        self.cohort = cohort
        self.outcomes = []

    def select(self, round_index, n_select, rng):
        return list(self.cohort)

    def report_round(self, outcome):
        self.outcomes.append(outcome)


def make_trainer(fed, strategy, rounds=3, npr=3, straggler=None, seed=0,
                 algorithm="fedavg"):
    model = make_model("softmax", fed.parties[0].feature_shape,
                       fed.num_classes, rng=seed)
    config = FLJobConfig(rounds=rounds, parties_per_round=npr,
                         local=LocalTrainingConfig(epochs=1, batch_size=16,
                                                   learning_rate=0.1),
                         seed=seed)
    return FederatedTrainer(fed, model, make_algorithm(algorithm),
                            strategy, config, straggler_model=straggler)


@pytest.fixture(scope="module")
def fed():
    return build_federation("ecg", 8, alpha=0.5, n_train=400, n_test=200,
                            seed=3)


class TestRoundLoop:
    def test_runs_configured_rounds(self, fed):
        history = make_trainer(fed, RandomSelection(), rounds=4).run()
        assert len(history) == 4
        assert history.records[0].round_index == 1
        assert history.records[-1].round_index == 4

    def test_accuracy_recorded_each_round(self, fed):
        history = make_trainer(fed, RandomSelection(), rounds=3).run()
        for rec in history.records:
            assert 0.0 <= rec.balanced_accuracy <= 1.0
            assert len(rec.per_label_recall) == fed.num_classes

    def test_training_improves_over_rounds(self, fed):
        history = make_trainer(fed, RandomSelection(), rounds=10,
                               npr=4).run()
        accs = history.accuracy_series()
        assert accs[-3:].mean() > accs[0]

    def test_strategy_sees_outcomes(self, fed):
        strategy = RecordingStrategy([0, 1, 2])
        make_trainer(fed, strategy, rounds=2).run()
        assert len(strategy.outcomes) == 2
        outcome = strategy.outcomes[0]
        assert outcome.cohort == (0, 1, 2)
        assert set(outcome.train_losses) == {0, 1, 2}
        assert set(outcome.latencies) == {0, 1, 2}

    def test_comm_bytes_metered(self, fed):
        strategy = RecordingStrategy([0, 1, 2])
        history = make_trainer(fed, strategy, rounds=2).run()
        model_dim = 24 * 5 + 5
        per_round = (3 + 3) * 8 * model_dim
        assert history.records[0].comm_bytes == per_round

    def test_duplicate_selection_rejected(self, fed):
        strategy = RecordingStrategy([0, 0, 1])
        with pytest.raises(ConfigurationError):
            make_trainer(fed, strategy).run()

    def test_unknown_party_rejected(self, fed):
        strategy = RecordingStrategy([0, 99])
        with pytest.raises(ConfigurationError):
            make_trainer(fed, strategy).run()

    def test_parties_per_round_bounded(self, fed):
        model = make_model("softmax", (24,), 5, rng=0)
        config = FLJobConfig(rounds=1, parties_per_round=500)
        with pytest.raises(ConfigurationError):
            FederatedTrainer(fed, model, make_algorithm("fedavg"),
                             RandomSelection(), config)


class TestStragglerHandling:
    def test_stragglers_excluded_from_aggregation(self, fed):
        strategy = RecordingStrategy(list(range(5)))
        history = make_trainer(
            fed, strategy, rounds=2, npr=5,
            straggler=ExactFractionStragglers(0.4)).run()
        rec = history.records[0]
        assert len(rec.stragglers) == 2
        assert len(rec.received) == 3
        assert set(rec.received) | set(rec.stragglers) == set(rec.cohort)

    def test_strategy_informed_of_stragglers(self, fed):
        strategy = RecordingStrategy(list(range(5)))
        make_trainer(fed, strategy, rounds=1, npr=5,
                     straggler=ExactFractionStragglers(0.4)).run()
        outcome = strategy.outcomes[0]
        assert len(outcome.stragglers) == 2
        for straggler in outcome.stragglers:
            assert straggler not in outcome.train_losses

    def test_all_drop_round_keeps_model(self, fed):
        strategy = RecordingStrategy([0, 1])
        trainer = make_trainer(fed, strategy, rounds=2, npr=2,
                               straggler=ExactFractionStragglers(1.0))
        before = trainer.global_parameters.copy()
        history = trainer.run()
        assert np.array_equal(trainer.global_parameters, before)
        assert history.records[0].received == ()

    def test_straggler_round_duration_padded(self, fed):
        strategy = RecordingStrategy(list(range(6)))
        clean = make_trainer(fed, strategy, rounds=1, npr=6).run()
        strategy2 = RecordingStrategy(list(range(6)))
        dropped = make_trainer(
            fed, strategy2, rounds=1, npr=6,
            straggler=ExactFractionStragglers(0.34)).run()
        assert dropped.records[0].round_duration != \
            clean.records[0].round_duration


class TestDeterminism:
    def test_same_seed_same_history(self, fed):
        h1 = make_trainer(fed, RandomSelection(), rounds=3, seed=9).run()
        h2 = make_trainer(fed, RandomSelection(), rounds=3, seed=9).run()
        assert np.array_equal(h1.accuracy_series(), h2.accuracy_series())
        assert [r.cohort for r in h1.records] == \
            [r.cohort for r in h2.records]

    def test_different_seeds_differ(self, fed):
        h1 = make_trainer(fed, RandomSelection(), rounds=3, seed=1).run()
        h2 = make_trainer(fed, RandomSelection(), rounds=3, seed=2).run()
        assert [r.cohort for r in h1.records] != \
            [r.cohort for r in h2.records]

    def test_update_deltas_only_when_wanted(self, fed):
        class Wanting(RecordingStrategy):
            wants_update_vectors = True

        plain = RecordingStrategy([0, 1])
        make_trainer(fed, plain, rounds=1, npr=2).run()
        assert plain.outcomes[0].update_deltas == {}

        wanting = Wanting([0, 1])
        make_trainer(fed, wanting, rounds=1, npr=2).run()
        assert set(wanting.outcomes[0].update_deltas) == {0, 1}


@pytest.mark.parametrize("algorithm", ["fedavg", "fedprox", "fedyogi",
                                       "fedadam", "fedadagrad", "fedsgd",
                                       "feddyn"])
def test_every_algorithm_end_to_end(fed, algorithm):
    """Each FL algorithm completes a short job and produces finite
    accuracy."""
    history = make_trainer(fed, RandomSelection(), rounds=3, npr=3,
                           algorithm=algorithm).run()
    assert len(history) == 3
    assert np.isfinite(history.accuracy_series()).all()
