"""Drift support: re-clustering with fairness memory (§8 future work)."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.core import FlipsSelector, cluster_label_distributions
from repro.selection import RoundOutcome, SelectionContext

from tests.core.test_flips import block_lds, ctx, outcome


def drifted_lds(groups=4, per=5, classes=4):
    """Parties rotated to the *next* dominant label (distribution drift)."""
    rows = []
    for g in range(groups):
        for _ in range(per):
            row = np.zeros(classes)
            row[(g + 1) % classes] = 50.0
            rows.append(row)
    return np.stack(rows)


@pytest.fixture()
def warmed_selector():
    selector = FlipsSelector(label_distributions=block_lds(4, 5), k=4)
    selector.initialize(ctx(20, npr=4))
    rng = np.random.default_rng(0)
    for r in range(1, 11):
        cohort = selector.select(r, 4, rng)
        selector.report_round(outcome(r, cohort))
    return selector


class TestRefreshClusters:
    def test_returns_new_k(self, warmed_selector):
        k = warmed_selector.refresh_clusters(
            label_distributions=drifted_lds())
        assert k == 4

    def test_pick_counts_preserved(self, warmed_selector):
        before = warmed_selector.party_pick_counts()
        warmed_selector.refresh_clusters(label_distributions=drifted_lds())
        assert warmed_selector.party_pick_counts() == before

    def test_fairness_continues_across_refresh(self, warmed_selector):
        """Long-run participation stays balanced even though clustering
        changed mid-job."""
        warmed_selector.refresh_clusters(label_distributions=drifted_lds())
        rng = np.random.default_rng(1)
        for r in range(11, 41):
            cohort = warmed_selector.select(r, 4, rng)
            warmed_selector.report_round(outcome(r, cohort))
        counts = warmed_selector.party_pick_counts()
        assert max(counts.values()) - min(counts.values()) <= 2

    def test_selection_valid_after_refresh(self, warmed_selector):
        warmed_selector.refresh_clusters(label_distributions=drifted_lds())
        cohort = warmed_selector.select(99, 4, np.random.default_rng(0))
        assert len(cohort) == 4
        assert len(set(cohort)) == 4

    def test_straggler_state_reattributed(self, warmed_selector):
        rng = np.random.default_rng(2)
        cohort = warmed_selector.select(11, 4, rng)
        warmed_selector.report_round(
            outcome(11, cohort, stragglers=(cohort[0],)))
        straggler = cohort[0]
        warmed_selector.refresh_clusters(label_distributions=drifted_lds())
        new_cluster = int(
            warmed_selector.cluster_model.assignments[straggler])
        assert warmed_selector._straggler_clusters.count(new_cluster) == 1

    def test_accepts_prebuilt_model(self, warmed_selector):
        model = cluster_label_distributions(drifted_lds(), k=2, rng=0)
        assert warmed_selector.refresh_clusters(cluster_model=model) == 2

    def test_requires_exactly_one_source(self, warmed_selector):
        with pytest.raises(ConfigurationError):
            warmed_selector.refresh_clusters()
        with pytest.raises(ConfigurationError):
            warmed_selector.refresh_clusters(
                label_distributions=drifted_lds(),
                cluster_model=cluster_label_distributions(
                    drifted_lds(), k=2, rng=0))

    def test_population_mismatch_rejected(self, warmed_selector):
        with pytest.raises(ConfigurationError):
            warmed_selector.refresh_clusters(
                label_distributions=drifted_lds(groups=3, per=5))
