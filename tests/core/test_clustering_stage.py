"""Label-distribution clustering stage (§3.1)."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.core import ClusterModel, cluster_label_distributions


def synthetic_lds(groups=3, per=8, classes=5, seed=0):
    """Parties whose label distributions come in `groups` distinct types."""
    rng = np.random.default_rng(seed)
    prototypes = rng.dirichlet(np.ones(classes) * 0.3, size=groups)
    rows = []
    for g in range(groups):
        for _ in range(per):
            counts = rng.multinomial(100, prototypes[g])
            rows.append(counts.astype(float))
    return np.stack(rows), np.repeat(np.arange(groups), per)


class TestClusterLabelDistributions:
    def test_recovers_planted_groups_with_known_k(self):
        lds, truth = synthetic_lds(3, seed=1)
        model = cluster_label_distributions(lds, k=3, rng=0)
        assert model.k == 3
        for g in range(3):
            members = model.assignments[truth == g]
            # majority of each planted group lands in one cluster
            counts = np.bincount(members, minlength=3)
            assert counts.max() >= 0.75 * len(members)

    def test_elbow_finds_reasonable_k(self):
        lds, _ = synthetic_lds(4, per=10, seed=2)
        model = cluster_label_distributions(lds, rng=0, elbow_repeats=3)
        assert model.elbow is not None
        assert 2 <= model.k <= 8

    def test_normalization_ignores_party_size(self):
        """Two parties with proportional counts must co-cluster."""
        lds = np.array([[10.0, 0.0], [1000.0, 0.0],
                        [0.0, 10.0], [0.0, 1000.0]])
        model = cluster_label_distributions(lds, k=2, rng=0)
        assert model.assignments[0] == model.assignments[1]
        assert model.assignments[2] == model.assignments[3]
        assert model.assignments[0] != model.assignments[2]

    def test_without_normalization_size_matters(self):
        """Skipping normalization lets dataset magnitude leak into the
        clustering — proportional parties no longer co-cluster."""
        lds = np.array([[10.0, 0.0], [1000.0, 0.0],
                        [0.0, 10.0], [0.0, 1000.0]])
        model = cluster_label_distributions(lds, k=2, normalize=False,
                                            rng=0)
        proportional_pairs_together = (
            model.assignments[0] == model.assignments[1]
            and model.assignments[2] == model.assignments[3])
        assert not proportional_pairs_together

    def test_k_one(self):
        lds, _ = synthetic_lds(2, per=3)
        model = cluster_label_distributions(lds, k=1, rng=0)
        assert model.k == 1
        assert set(model.assignments) == {0}

    def test_members_and_sizes(self):
        lds, _ = synthetic_lds(2, per=5, seed=3)
        model = cluster_label_distributions(lds, k=2, rng=0)
        sizes = model.cluster_sizes()
        assert sizes.sum() == 10
        for c in range(model.k):
            assert len(model.members(c)) == sizes[c]

    def test_members_out_of_range(self):
        lds, _ = synthetic_lds(2, per=3)
        model = cluster_label_distributions(lds, k=2, rng=0)
        with pytest.raises(ConfigurationError):
            model.members(5)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            cluster_label_distributions(np.zeros((0, 3)))
        with pytest.raises(ConfigurationError):
            cluster_label_distributions(np.zeros(5))
        lds, _ = synthetic_lds(2, per=3)
        with pytest.raises(ConfigurationError):
            cluster_label_distributions(lds, k=100)

    def test_deterministic(self):
        lds, _ = synthetic_lds(3, seed=4)
        a = cluster_label_distributions(lds, k=3, rng=9)
        b = cluster_label_distributions(lds, k=3, rng=9)
        assert np.array_equal(a.assignments, b.assignments)

    def test_tiny_population_defaults_to_one_cluster(self):
        lds = np.array([[1.0, 2.0], [2.0, 1.0]])
        model = cluster_label_distributions(lds, rng=0)
        assert model.k == 1
