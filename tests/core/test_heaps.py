"""Pick-count heaps — Algorithm 1's fairness bookkeeping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.exceptions import ConfigurationError
from repro.core import PickCountMinHeap, StragglerClusterTracker


class TestPickCountMinHeap:
    def test_fifo_on_ties(self):
        heap = PickCountMinHeap(["a", "b", "c"])
        assert heap.extract_min() == "a"
        assert heap.extract_min() == "b"
        assert heap.extract_min() == "c"

    def test_least_picked_first(self):
        heap = PickCountMinHeap()
        heap.insert("x", 3)
        heap.insert("y", 1)
        heap.insert("z", 2)
        assert heap.extract_min() == "y"

    def test_round_robin_rotation(self):
        """extract → increment → insert cycles through all items."""
        heap = PickCountMinHeap(["a", "b", "c"])
        seen = []
        for _ in range(6):
            item = heap.extract_min()
            seen.append(item)
            heap.increment_and_insert(item)
        assert seen == ["a", "b", "c", "a", "b", "c"]

    def test_increment_persists_across_extract(self):
        heap = PickCountMinHeap(["a", "b"])
        item = heap.extract_min()
        heap.increment_and_insert(item)
        assert heap.picks(item) == 1
        assert heap.picks("b") == 0

    def test_exclude_skips_without_removing(self):
        heap = PickCountMinHeap(["a", "b", "c"])
        assert heap.extract_min(exclude={"a", "b"}) == "c"
        # a and b must still be present
        assert "a" in heap and "b" in heap
        assert heap.extract_min() == "a"

    def test_exclude_everything_raises(self):
        heap = PickCountMinHeap(["a"])
        with pytest.raises(ConfigurationError):
            heap.extract_min(exclude={"a"})

    def test_empty_extract_raises(self):
        with pytest.raises(ConfigurationError):
            PickCountMinHeap().extract_min()

    def test_drop_prunes_permanently(self):
        heap = PickCountMinHeap(["a", "b", "c"])
        assert heap.extract_min(drop={"a"}) == "b"
        # "a" was pruned on pop, not skipped-and-re-pushed.
        assert "a" not in heap
        assert len(heap) == 1
        assert heap.extract_min() == "c"

    def test_drop_is_not_rescanned_regression(self):
        """Regression for the O(n) rescan: a dropped entry must leave
        the underlying heap entirely, so later extractions — with or
        without ``drop`` — never surface it again."""
        heap = PickCountMinHeap(range(10))
        assert heap.extract_min(drop=set(range(5))) == 5
        assert all(entry[2] >= 6 for entry in heap._heap)
        assert [heap.extract_min() for _ in range(4)] == [6, 7, 8, 9]

    def test_drop_keeps_recorded_picks(self):
        """Pruning removes presence, not history: fairness memory
        survives, exactly like an extract would leave it."""
        heap = PickCountMinHeap()
        heap.insert("gone", 4)
        heap.insert("stays", 5)
        assert heap.extract_min(drop={"gone"}) == "stays"
        assert heap.picks("gone") == 4
        heap.insert("gone")  # a re-enrollment keeps its place in line
        assert heap.picks("gone") == 4

    def test_drop_combined_with_exclude(self):
        """Excluded entries are re-pushed (they will come back);
        dropped entries are not."""
        heap = PickCountMinHeap(["a", "b", "c", "d"])
        assert heap.extract_min(exclude={"b"}, drop={"a"}) == "c"
        assert "a" not in heap
        assert "b" in heap and "d" in heap
        assert heap.extract_min() == "b"

    def test_drop_everything_raises(self):
        heap = PickCountMinHeap(["a", "b"])
        with pytest.raises(ConfigurationError):
            heap.extract_min(drop={"a", "b"})
        assert len(heap) == 0

    def test_double_insert_rejected(self):
        heap = PickCountMinHeap(["a"])
        with pytest.raises(ConfigurationError):
            heap.insert("a")

    def test_reinsert_keeps_recorded_picks(self):
        heap = PickCountMinHeap()
        heap.insert("a", 5)
        heap.extract_min()
        heap.insert("a")  # picks=None -> recorded count
        assert heap.picks("a") == 5

    def test_len_and_contains(self):
        heap = PickCountMinHeap(["a", "b"])
        assert len(heap) == 2
        heap.extract_min()
        assert len(heap) == 1
        assert "b" in heap

    def test_peek_does_not_remove(self):
        heap = PickCountMinHeap(["a", "b"])
        assert heap.peek_min() == "a"
        assert len(heap) == 2

    def test_pick_counts_snapshot(self):
        heap = PickCountMinHeap(["a", "b"])
        heap.increment_and_insert(heap.extract_min(), by=3)
        assert heap.pick_counts() == {"a": 3, "b": 0}

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=60))
    def test_property_fairness_bound(self, _draws):
        """After any number of extract/increment/insert cycles, pick
        counts across items differ by at most one — the round-robin
        fairness invariant FLIPS relies on."""
        heap = PickCountMinHeap(range(7))
        for _ in _draws:
            heap.increment_and_insert(heap.extract_min())
        counts = list(heap.pick_counts().values())
        assert max(counts) - min(counts) <= 1


class TestStragglerClusterTracker:
    def test_extract_max_prefers_most_stragglers(self):
        tracker = StragglerClusterTracker()
        tracker.record_straggler(1)
        tracker.record_straggler(2)
        tracker.record_straggler(2)
        assert tracker.extract_max() == 2

    def test_extract_decrements(self):
        tracker = StragglerClusterTracker()
        tracker.record_straggler(1)
        tracker.record_straggler(1)
        tracker.record_straggler(5)
        assert tracker.extract_max() == 1
        # 1 and 5 now tie at one each; tie-break = smaller id.
        assert tracker.extract_max() == 1
        assert tracker.extract_max() == 5

    def test_recovery_reduces_count(self):
        tracker = StragglerClusterTracker()
        tracker.record_straggler(3)
        tracker.record_recovery(3)
        assert not tracker
        with pytest.raises(ConfigurationError):
            tracker.extract_max()

    def test_recovery_never_negative(self):
        tracker = StragglerClusterTracker()
        tracker.record_recovery(3)
        assert tracker.count(3) == 0

    def test_bool_and_len(self):
        tracker = StragglerClusterTracker()
        assert not tracker
        tracker.record_straggler(0)
        tracker.record_straggler(4)
        assert tracker and len(tracker) == 2

    def test_snapshot_only_positive(self):
        tracker = StragglerClusterTracker()
        tracker.record_straggler(1)
        tracker.record_straggler(2)
        tracker.record_recovery(2)
        assert tracker.snapshot() == {1: 1}
