"""FlipsMiddleware: the Fig. 3/4 end-to-end private-selection flow."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError, SecurityError
from repro.core import FlipsMiddleware
from repro.selection import SelectionContext


def ctx(n, npr=4, seed=0):
    return SelectionContext(n, npr, 30, np.full(n, 20), 5, seed=seed)


class TestOnboarding:
    def test_full_flow(self, small_federation):
        middleware = FlipsMiddleware.for_federation(small_federation,
                                                    seed=1, k=4)
        assert middleware.n_clusters == 4
        selector = middleware.selector()
        selector.initialize(ctx(small_federation.n_parties, seed=1))
        cohort = selector.select(1, 4, np.random.default_rng(0))
        assert len(cohort) == 4

    def test_double_onboard_rejected(self):
        middleware = FlipsMiddleware(seed=0)
        middleware.onboard_party(0)
        with pytest.raises(ConfigurationError):
            middleware.onboard_party(0)

    def test_submit_without_onboarding_rejected(self):
        middleware = FlipsMiddleware(seed=0)
        with pytest.raises(SecurityError):
            middleware.submit_label_distribution(3, np.array([1.0, 2.0]))

    def test_noncontiguous_parties_rejected(self):
        middleware = FlipsMiddleware(seed=0)
        middleware.onboard_party(0)
        middleware.onboard_party(2)  # gap at 1
        middleware.submit_label_distribution(0, np.array([1.0, 0.0]))
        middleware.submit_label_distribution(2, np.array([0.0, 1.0]))
        with pytest.raises(ConfigurationError):
            middleware.finalize_clustering(k=2)

    def test_selector_requires_finalize(self):
        middleware = FlipsMiddleware(seed=0)
        with pytest.raises(ConfigurationError):
            middleware.selector()

    def test_n_clusters_requires_finalize(self):
        middleware = FlipsMiddleware(seed=0)
        with pytest.raises(ConfigurationError):
            _ = middleware.n_clusters


class TestPrivacyProperties:
    def test_label_distributions_sealed(self, small_federation):
        middleware = FlipsMiddleware.for_federation(small_federation,
                                                    seed=1, k=4)
        with pytest.raises(SecurityError):
            middleware.enclave.read_sealed("label_distributions")
        with pytest.raises(SecurityError):
            middleware.enclave.read_sealed("cluster_model")

    def test_selections_match_transparent_flips(self, small_federation):
        """TEE-private clustering must produce the same selections as the
        transparent path given the same k and clustering seed."""
        from repro.core import FlipsSelector

        seed = 5
        middleware = FlipsMiddleware.for_federation(small_federation,
                                                    seed=seed, k=4)
        private = middleware.selector()
        private.initialize(ctx(small_federation.n_parties, seed=seed))

        transparent = FlipsSelector(
            label_distributions=small_federation.label_distributions(),
            k=4)
        # Transparent path clusters with its own stream; to compare
        # selections we give it the middleware's cluster model instead.
        same_model = FlipsSelector(
            cluster_model=middleware.service.cluster_model())
        same_model.initialize(ctx(small_federation.n_parties, seed=seed))

        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        for r in range(1, 6):
            assert private.select(r, 4, rng_a) == \
                same_model.select(r, 4, rng_b)

    def test_shutdown_destroys_enclave(self, small_federation):
        middleware = FlipsMiddleware.for_federation(small_federation,
                                                    seed=1, k=4)
        middleware.shutdown()
        with pytest.raises(SecurityError):
            middleware.enclave.generate_quote(b"n" * 16)
