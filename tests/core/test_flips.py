"""FlipsSelector — Algorithm 1's selection and straggler handling."""

import numpy as np
import pytest
from collections import Counter

from repro.common.exceptions import ConfigurationError
from repro.core import FlipsSelector, cluster_label_distributions
from repro.selection import RoundOutcome, SelectionContext


def block_lds(groups=4, per=5, classes=4):
    """Parties in `groups` one-hot label-distribution groups."""
    rows = []
    for g in range(groups):
        for _ in range(per):
            row = np.zeros(classes)
            row[g % classes] = 50.0
            rows.append(row)
    return np.stack(rows)


def ctx(n, npr=4, rounds=50, seed=0):
    return SelectionContext(n, npr, rounds, np.full(n, 20), 4, seed=seed)


def make_selector(groups=4, per=5, npr=4, k=None, seed=0, **kwargs):
    lds = block_lds(groups, per)
    selector = FlipsSelector(label_distributions=lds, k=k or groups,
                             **kwargs)
    selector.initialize(ctx(groups * per, npr=npr, seed=seed))
    return selector


def outcome(r, cohort, stragglers=()):
    received = tuple(p for p in cohort if p not in stragglers)
    return RoundOutcome(round_index=r, cohort=tuple(cohort),
                        received=received,
                        stragglers=tuple(stragglers))


class TestConstruction:
    def test_exactly_one_source_required(self):
        with pytest.raises(ConfigurationError):
            FlipsSelector()
        with pytest.raises(ConfigurationError):
            FlipsSelector(label_distributions=block_lds(),
                          cluster_model=cluster_label_distributions(
                              block_lds(), k=2, rng=0))

    def test_cluster_model_source(self):
        model = cluster_label_distributions(block_lds(), k=4, rng=0)
        selector = FlipsSelector(cluster_model=model)
        selector.initialize(ctx(20))
        assert selector.cluster_model is model

    def test_mismatched_population_rejected(self):
        selector = FlipsSelector(label_distributions=block_lds(4, 5))
        with pytest.raises(ConfigurationError):
            selector.initialize(ctx(99))

    def test_select_before_initialize(self):
        selector = FlipsSelector(label_distributions=block_lds())
        with pytest.raises(Exception):
            selector.select(1, 4, np.random.default_rng(0))

    def test_invalid_overprovision_params(self):
        with pytest.raises(ConfigurationError):
            FlipsSelector(label_distributions=block_lds(),
                          max_overprovision=1.5)
        with pytest.raises(ConfigurationError):
            FlipsSelector(label_distributions=block_lds(),
                          strg_smoothing=0.0)


class TestEquitableSelection:
    def test_one_party_per_cluster_when_nr_equals_k(self):
        selector = make_selector(groups=4, per=5, npr=4)
        rng = np.random.default_rng(0)
        for r in range(1, 20):
            cohort = selector.select(r, 4, rng)
            clusters = {selector.cluster_model.assignments[p]
                        for p in cohort}
            assert len(clusters) == 4  # every cluster represented

    def test_proportional_when_nr_multiple_of_k(self):
        selector = make_selector(groups=4, per=5, npr=8)
        rng = np.random.default_rng(0)
        cohort = selector.select(1, 8, rng)
        counts = Counter(selector.cluster_model.assignments[p]
                         for p in cohort)
        assert all(c == 2 for c in counts.values())

    def test_fewer_slots_than_clusters_rotates_clusters(self):
        """With Nr < |C|, cluster picks stay balanced across rounds."""
        selector = make_selector(groups=4, per=5, npr=2)
        rng = np.random.default_rng(0)
        for r in range(1, 9):  # 8 rounds × 2 picks = 16 cluster picks
            selector.select(r, 2, rng)
        picks = selector.cluster_pick_counts()
        assert max(picks.values()) - min(picks.values()) <= 1

    def test_party_fairness_within_cluster(self):
        """Every party participates equally often over a long horizon."""
        selector = make_selector(groups=4, per=5, npr=4)
        rng = np.random.default_rng(0)
        for r in range(1, 41):  # 40 rounds × 4 = 160 picks = 8 each
            selector.select(r, 4, rng)
        counts = selector.party_pick_counts()
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_unique_parties_per_round(self):
        selector = make_selector(groups=3, per=2, npr=5, k=3)
        rng = np.random.default_rng(0)
        for r in range(1, 10):
            cohort = selector.select(r, 5, rng)
            assert len(cohort) == len(set(cohort))

    def test_nr_larger_than_population_capped(self):
        selector = make_selector(groups=2, per=2, npr=4, k=2)
        cohort = selector.select(1, 10, np.random.default_rng(0))
        assert sorted(cohort) == [0, 1, 2, 3]

    def test_heap_order_varies_with_seed(self):
        a = make_selector(seed=1).select(1, 4, np.random.default_rng(0))
        b = make_selector(seed=2).select(1, 4, np.random.default_rng(0))
        assert a != b


class TestStragglerHandling:
    def test_no_overprovision_without_stragglers(self):
        selector = make_selector(npr=4)
        cohort = selector.select(1, 4, np.random.default_rng(0))
        assert len(cohort) == 4
        selector.report_round(outcome(1, cohort))
        assert len(selector.select(2, 4, np.random.default_rng(0))) == 4

    def test_overprovisions_after_stragglers(self):
        selector = make_selector(groups=4, per=5, npr=4)
        rng = np.random.default_rng(0)
        cohort = selector.select(1, 4, rng)
        selector.report_round(outcome(1, cohort,
                                      stragglers=cohort[:2]))  # 50 % drop
        assert selector.straggler_rate_estimate > 0
        bigger = selector.select(2, 4, rng)
        assert len(bigger) > 4

    def test_replacements_from_straggler_cluster(self):
        selector = make_selector(groups=4, per=5, npr=4)
        rng = np.random.default_rng(0)
        cohort = selector.select(1, 4, rng)
        straggler = cohort[0]
        straggler_cluster = selector.cluster_model.assignments[straggler]
        # heavy drop so int(strg * Nr) >= 1 next round
        selector.report_round(outcome(1, cohort,
                                      stragglers=(straggler, cohort[1])))
        nxt = selector.select(2, 4, rng)
        extras = nxt[4:]
        assert extras, "expected over-provisioned parties"
        extra_clusters = {selector.cluster_model.assignments[p]
                          for p in extras}
        assert straggler_cluster in extra_clusters

    def test_known_stragglers_not_replacements(self):
        selector = make_selector(groups=2, per=6, npr=4, k=2)
        rng = np.random.default_rng(0)
        cohort = selector.select(1, 4, rng)
        stragglers = tuple(cohort[:2])
        selector.report_round(outcome(1, cohort, stragglers=stragglers))
        nxt = selector.select(2, 4, rng)
        extras = set(nxt[4:])
        assert extras.isdisjoint(stragglers)

    def test_recovery_clears_state(self):
        selector = make_selector(groups=4, per=5, npr=4)
        rng = np.random.default_rng(0)
        cohort = selector.select(1, 4, rng)
        selector.report_round(outcome(1, cohort, stragglers=(cohort[0],)))
        assert selector._stragglers_active
        # The straggler reports next round; straggler set drains.
        cohort2 = selector.select(2, 4, rng)
        received = tuple(set(cohort2) | {cohort[0]})
        selector.report_round(RoundOutcome(
            round_index=2, cohort=received, received=received,
            stragglers=()))
        assert not selector._stragglers_active

    def test_estimate_capped(self):
        selector = make_selector(max_overprovision=0.3)
        rng = np.random.default_rng(0)
        for r in range(1, 8):
            cohort = selector.select(r, 4, rng)
            selector.report_round(outcome(r, cohort,
                                          stragglers=tuple(cohort)))
        assert selector.straggler_rate_estimate <= 0.3

    def test_overprovision_disabled(self):
        selector = make_selector(overprovision=False)
        rng = np.random.default_rng(0)
        cohort = selector.select(1, 4, rng)
        selector.report_round(outcome(1, cohort, stragglers=cohort[:2]))
        assert len(selector.select(2, 4, rng)) == 4


class TestElbowIntegration:
    def test_k_none_uses_elbow(self):
        lds = block_lds(groups=4, per=6)
        selector = FlipsSelector(label_distributions=lds, elbow_repeats=3)
        selector.initialize(ctx(24, npr=4, seed=3))
        # Four crisp one-hot groups: the elbow should find ~4.
        assert 2 <= selector.cluster_model.k <= 6
