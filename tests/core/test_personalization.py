"""Per-cluster personalization (§8 future work)."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.core import cluster_label_distributions
from repro.core.personalization import personalize
from repro.data import build_federation
from repro.fl import (
    FederatedTrainer,
    FLJobConfig,
    LocalTrainingConfig,
    make_algorithm,
)
from repro.core.flips import FlipsSelector
from repro.ml import make_model


@pytest.fixture(scope="module")
def trained_setup():
    fed = build_federation("ecg", 12, alpha=0.2, n_train=1200,
                           n_test=400, seed=8)
    clusters = cluster_label_distributions(fed.label_distributions(),
                                           k=3, rng=0)
    model = make_model("softmax", fed.parties[0].feature_shape,
                       fed.num_classes, rng=8)
    selector = FlipsSelector(cluster_model=clusters)
    trainer = FederatedTrainer(
        fed, model, make_algorithm("fedyogi"), selector,
        FLJobConfig(rounds=10, parties_per_round=4,
                    local=LocalTrainingConfig(epochs=3, batch_size=16,
                                              learning_rate=0.15),
                    seed=8))
    trainer.run()
    return fed, clusters, model, trainer.global_parameters


class TestPersonalize:
    def test_one_model_per_cluster(self, trained_setup):
        fed, clusters, model, global_params = trained_setup
        result = personalize(fed, clusters, model, global_params,
                             rounds=2, seed=1)
        assert set(result.cluster_parameters) == set(range(clusters.k))
        for params in result.cluster_parameters.values():
            assert params.shape == global_params.shape

    def test_personalized_models_diverge_from_global(self, trained_setup):
        fed, clusters, model, global_params = trained_setup
        result = personalize(fed, clusters, model, global_params,
                             rounds=2, seed=1)
        for params in result.cluster_parameters.values():
            assert not np.allclose(params, global_params)

    def test_personalization_helps_on_cluster_data(self, trained_setup):
        """On average, the cluster-specific model beats the global one on
        the cluster's own (held-out) data mixture — the whole point."""
        fed, clusters, model, global_params = trained_setup
        result = personalize(fed, clusters, model, global_params,
                             rounds=3, seed=1)
        assert result.mean_improvement() > -0.02
        assert max(result.improvement(c)
                   for c in result.cluster_parameters) > 0

    def test_accuracies_bounded(self, trained_setup):
        fed, clusters, model, global_params = trained_setup
        result = personalize(fed, clusters, model, global_params,
                             rounds=1, seed=2)
        for acc_map in (result.global_accuracy,
                        result.personalized_accuracy):
            for value in acc_map.values():
                assert 0.0 <= value <= 1.0

    def test_mismatched_cluster_model_rejected(self, trained_setup):
        fed, clusters, model, global_params = trained_setup
        other = build_federation("ecg", 6, alpha=0.3, n_train=400,
                                 n_test=100, seed=1)
        bad = cluster_label_distributions(other.label_distributions(),
                                          k=2, rng=0)
        with pytest.raises(ConfigurationError):
            personalize(fed, bad, model, global_params)

    def test_invalid_rounds(self, trained_setup):
        fed, clusters, model, global_params = trained_setup
        with pytest.raises(ConfigurationError):
            personalize(fed, clusters, model, global_params, rounds=0)

    def test_deterministic(self, trained_setup):
        fed, clusters, model, global_params = trained_setup
        a = personalize(fed, clusters, model, global_params, rounds=1,
                        seed=5)
        b = personalize(fed, clusters, model, global_params, rounds=1,
                        seed=5)
        for c in a.cluster_parameters:
            assert np.allclose(a.cluster_parameters[c],
                               b.cluster_parameters[c])
