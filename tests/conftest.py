"""Shared fixtures for the FLIPS reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_federation
from repro.experiments import smoke_config


@pytest.fixture(scope="session")
def small_federation():
    """A 12-party ECG federation reused by read-only tests."""
    return build_federation("ecg", 12, alpha=0.3, n_train=600,
                            n_test=300, seed=7)


@pytest.fixture(scope="session")
def balanced_federation():
    """A 10-party balanced (femnist) federation."""
    return build_federation("femnist", 10, alpha=0.6, n_train=600,
                            n_test=300, seed=11)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def smoke():
    """A seconds-scale experiment config."""
    return smoke_config("ecg")
