"""Attestation server: quote verification, replay defence."""

import pytest

from repro.common.exceptions import ConfigurationError, SecurityError
from repro.tee import AttestationServer, SimulatedEnclave

ROOT = b"r" * 32


def noop(sealed):
    return None


@pytest.fixture()
def setup():
    enclave = SimulatedEnclave(ROOT, seed=0)
    enclave.load_code("noop", noop)
    server = AttestationServer(ROOT)
    server.approve_measurement(enclave.measurement, "test code")
    return enclave, server


class TestVerification:
    def test_happy_path(self, setup):
        enclave, server = setup
        nonce = server.issue_nonce()
        assert server.verify_quote(enclave.generate_quote(nonce))

    def test_unapproved_code_rejected(self):
        enclave = SimulatedEnclave(ROOT, seed=0)
        enclave.load_code("evil", lambda sealed: sealed)
        server = AttestationServer(ROOT)
        nonce = server.issue_nonce()
        with pytest.raises(SecurityError, match="unapproved"):
            server.verify_quote(enclave.generate_quote(nonce))

    def test_wrong_hardware_key_rejected(self, setup):
        enclave, server = setup
        impostor = SimulatedEnclave(b"x" * 32, seed=0)
        impostor.load_code("noop", noop)
        server.approve_measurement(impostor.measurement)
        nonce = server.issue_nonce()
        with pytest.raises(SecurityError, match="genuine"):
            server.verify_quote(impostor.generate_quote(nonce))

    def test_foreign_nonce_rejected(self, setup):
        enclave, server = setup
        with pytest.raises(SecurityError, match="not issued"):
            server.verify_quote(enclave.generate_quote(b"f" * 16))

    def test_replay_rejected(self, setup):
        enclave, server = setup
        nonce = server.issue_nonce()
        quote = enclave.generate_quote(nonce)
        server.verify_quote(quote)
        with pytest.raises(SecurityError, match="replay"):
            server.verify_quote(quote)

    def test_revocation(self, setup):
        enclave, server = setup
        server.revoke_measurement(enclave.measurement)
        nonce = server.issue_nonce()
        with pytest.raises(SecurityError):
            server.verify_quote(enclave.generate_quote(nonce))


class TestRegistry:
    def test_approved_listing(self, setup):
        enclave, server = setup
        assert enclave.measurement in server.approved_measurements

    def test_bad_measurement_length(self):
        server = AttestationServer(ROOT)
        with pytest.raises(ConfigurationError):
            server.approve_measurement(b"short")

    def test_short_root_key(self):
        with pytest.raises(ConfigurationError):
            AttestationServer(b"x")
