"""Private clustering service: encrypted submissions, sealed results."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError, SecurityError
from repro.tee import (
    AttestationServer,
    PrivateClusteringService,
    SecureChannel,
    SimulatedEnclave,
)

ROOT = b"r" * 32


@pytest.fixture()
def service_stack():
    enclave = SimulatedEnclave(ROOT, seed=0)
    service = PrivateClusteringService(enclave)
    server = AttestationServer(ROOT)
    server.approve_measurement(enclave.measurement)
    return enclave, service, server


def onboard(service, enclave, server, party_id, seed=None):
    channel = SecureChannel.establish(party_id, enclave, server,
                                      seed=seed or (100 + party_id))
    service.register_channel(party_id, channel)
    return channel


def submit_all(service, enclave, server, lds):
    for party_id, ld in enumerate(lds):
        channel = onboard(service, enclave, server, party_id)
        service.submit(party_id, channel.seal_vector(np.asarray(ld,
                                                               dtype=float)))


ONE_HOT_LDS = [[50, 0], [45, 2], [0, 60], [1, 55], [48, 1], [2, 52]]


class TestSubmission:
    def test_submissions_counted(self, service_stack):
        enclave, service, server = service_stack
        submit_all(service, enclave, server, ONE_HOT_LDS)
        assert service.n_submissions == 6

    def test_submit_without_channel_rejected(self, service_stack):
        _, service, _ = service_stack
        with pytest.raises(SecurityError):
            service.submit(0, b"ciphertext")

    def test_tampered_submission_rejected(self, service_stack):
        enclave, service, server = service_stack
        channel = onboard(service, enclave, server, 0)
        blob = bytearray(channel.seal_vector(np.array([1.0, 2.0])))
        blob[-1] ^= 0x01
        with pytest.raises(SecurityError):
            service.submit(0, bytes(blob))

    def test_negative_counts_rejected(self, service_stack):
        enclave, service, server = service_stack
        channel = onboard(service, enclave, server, 0)
        with pytest.raises(ConfigurationError):
            service.submit(0, channel.seal_vector(np.array([-1.0, 2.0])))

    def test_duplicate_registration_rejected(self, service_stack):
        enclave, service, server = service_stack
        onboard(service, enclave, server, 0)
        with pytest.raises(ConfigurationError):
            onboard(service, enclave, server, 0)

    def test_channel_identity_enforced(self, service_stack):
        enclave, service, server = service_stack
        channel = SecureChannel.establish(5, enclave, server, seed=9)
        with pytest.raises(SecurityError):
            service.register_channel(4, channel)


class TestClustering:
    def test_clusters_computed_in_enclave(self, service_stack):
        enclave, service, server = service_stack
        submit_all(service, enclave, server, ONE_HOT_LDS)
        k = service.run_clustering(k=2, rng=0)
        assert k == 2
        model = service.cluster_model()
        # planted groups: label-0 dominant {0,1,4} vs label-1 {2,3,5}
        a = model.assignments
        assert a[0] == a[1] == a[4]
        assert a[2] == a[3] == a[5]
        assert a[0] != a[2]

    def test_label_distributions_not_outside_enclave(self, service_stack):
        enclave, service, server = service_stack
        submit_all(service, enclave, server, ONE_HOT_LDS)
        with pytest.raises(SecurityError):
            enclave.read_sealed("label_distributions")

    def test_cluster_before_submissions_rejected(self, service_stack):
        _, service, _ = service_stack
        with pytest.raises(ConfigurationError):
            service.run_clustering()

    def test_model_before_clustering_rejected(self, service_stack):
        enclave, service, server = service_stack
        submit_all(service, enclave, server, ONE_HOT_LDS)
        with pytest.raises(ConfigurationError):
            service.cluster_model()

    def test_submissions_closed_after_finalize(self, service_stack):
        enclave, service, server = service_stack
        submit_all(service, enclave, server, ONE_HOT_LDS)
        service.run_clustering(k=2, rng=0)
        channel = onboard(service, enclave, server, 99)
        with pytest.raises(ConfigurationError):
            service.submit(99, channel.seal_vector(np.array([1.0, 1.0])))

    def test_party_order(self, service_stack):
        enclave, service, server = service_stack
        submit_all(service, enclave, server, ONE_HOT_LDS)
        service.run_clustering(k=2, rng=0)
        assert service.party_order() == list(range(6))

    def test_wipe_clears_results(self, service_stack):
        enclave, service, server = service_stack
        submit_all(service, enclave, server, ONE_HOT_LDS)
        service.run_clustering(k=2, rng=0)
        service.wipe()
        with pytest.raises(ConfigurationError):
            service.cluster_model()
