"""Simulated enclave: measurement, sealed state, quotes, teardown."""

import pytest

from repro.common.exceptions import ConfigurationError, SecurityError
from repro.tee import SimulatedEnclave

ROOT = b"r" * 32


def store(sealed, key, value):
    sealed[key] = value


def load(sealed, key):
    return sealed.get(key)


@pytest.fixture()
def enclave():
    enc = SimulatedEnclave(ROOT, seed=0)
    enc.load_code("store", store)
    enc.load_code("load", load)
    return enc


class TestMeasurement:
    def test_same_code_same_measurement(self):
        a = SimulatedEnclave(ROOT, seed=0)
        a.load_code("store", store)
        b = SimulatedEnclave(ROOT, seed=1)
        b.load_code("store", store)
        assert a.measurement == b.measurement

    def test_different_code_different_measurement(self):
        a = SimulatedEnclave(ROOT, seed=0)
        a.load_code("store", store)
        b = SimulatedEnclave(ROOT, seed=0)
        b.load_code("store", load)  # different function body
        assert a.measurement != b.measurement

    def test_load_order_matters(self):
        a = SimulatedEnclave(ROOT)
        a.load_code("x", store)
        a.load_code("y", load)
        b = SimulatedEnclave(ROOT)
        b.load_code("y", load)
        b.load_code("x", store)
        assert a.measurement != b.measurement

    def test_duplicate_entry_point_rejected(self, enclave):
        with pytest.raises(ConfigurationError):
            enclave.load_code("store", store)

    def test_no_code_loading_after_sealing(self, enclave):
        enclave.call("store", "k", 1)
        with pytest.raises(SecurityError):
            enclave.load_code("late", load)


class TestSealedState:
    def test_round_trip_through_calls(self, enclave):
        enclave.call("store", "secret", [1, 2, 3])
        assert enclave.call("load", "secret") == [1, 2, 3]

    def test_outside_read_blocked(self, enclave):
        enclave.call("store", "secret", 42)
        with pytest.raises(SecurityError):
            enclave.read_sealed("secret")

    def test_inside_read_allowed(self, enclave):
        enclave.call("store", "secret", 42)

        def probe(sealed):
            return enclave.read_sealed("secret")

        probe_enclave = SimulatedEnclave(ROOT)
        # attach probe as enclave code of the same enclave
        enclave._code["probe"] = probe  # test-only direct injection
        assert enclave.call("probe") == 42

    def test_unknown_entry_point(self, enclave):
        with pytest.raises(SecurityError):
            enclave.call("exfiltrate")


class TestQuotes:
    def test_quote_signature_binds_measurement_and_nonce(self, enclave):
        quote = enclave.generate_quote(b"n" * 16)
        assert quote.measurement == enclave.measurement
        assert quote.nonce == b"n" * 16
        assert quote.enclave_public_key == enclave.public_key

    def test_short_nonce_rejected(self, enclave):
        with pytest.raises(SecurityError):
            enclave.generate_quote(b"abc")


class TestLifecycle:
    def test_destroy_wipes_everything(self, enclave):
        enclave.call("store", "secret", 1)
        enclave.destroy()
        with pytest.raises(SecurityError):
            enclave.call("load", "secret")
        with pytest.raises(SecurityError):
            enclave.generate_quote(b"n" * 16)

    def test_short_root_key_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedEnclave(b"short")
