"""Attested secure channels (party ↔ enclave)."""

import numpy as np
import pytest

from repro.common.exceptions import SecurityError
from repro.tee import (
    AttestationServer,
    SecureChannel,
    SimulatedEnclave,
    decode_vector,
    encode_vector,
)

ROOT = b"r" * 32


def noop(sealed):
    return None


@pytest.fixture()
def stack():
    enclave = SimulatedEnclave(ROOT, seed=0)
    enclave.load_code("noop", noop)
    server = AttestationServer(ROOT)
    server.approve_measurement(enclave.measurement)
    return enclave, server


class TestVectorCodec:
    def test_round_trip(self):
        vec = np.array([1.5, -2.0, 0.0])
        assert np.array_equal(decode_vector(encode_vector(vec)), vec)

    def test_decoded_is_writable(self):
        out = decode_vector(encode_vector(np.arange(3.0)))
        out[0] = 99.0  # must not raise (copy, not frombuffer view)


class TestEstablish:
    def test_handshake_succeeds(self, stack):
        enclave, server = stack
        channel = SecureChannel.establish(3, enclave, server, seed=1)
        assert channel.party_id == 3

    def test_handshake_fails_on_unapproved_enclave(self):
        enclave = SimulatedEnclave(ROOT, seed=0)
        enclave.load_code("evil", lambda s: s)
        server = AttestationServer(ROOT)
        with pytest.raises(SecurityError):
            SecureChannel.establish(0, enclave, server)


class TestMessaging:
    def test_seal_unseal_round_trip(self, stack):
        enclave, server = stack
        channel = SecureChannel.establish(1, enclave, server, seed=2)
        assert channel.unseal(channel.seal(b"hello")) == b"hello"

    def test_vector_round_trip(self, stack):
        enclave, server = stack
        channel = SecureChannel.establish(1, enclave, server, seed=2)
        vec = np.array([10.0, 0.0, 3.0])
        assert np.array_equal(channel.unseal_vector(
            channel.seal_vector(vec)), vec)

    def test_sequence_numbers_advance(self, stack):
        enclave, server = stack
        channel = SecureChannel.establish(1, enclave, server, seed=2)
        first = channel.seal(b"a")
        second = channel.seal(b"b")
        assert channel.unseal(first) == b"a"
        assert channel.unseal(second) == b"b"

    def test_replay_rejected(self, stack):
        enclave, server = stack
        channel = SecureChannel.establish(1, enclave, server, seed=2)
        blob = channel.seal(b"a")
        channel.unseal(blob)
        with pytest.raises(SecurityError):
            channel.unseal(blob)  # frame seq moved on

    def test_reorder_rejected(self, stack):
        enclave, server = stack
        channel = SecureChannel.establish(1, enclave, server, seed=2)
        first = channel.seal(b"a")
        second = channel.seal(b"b")
        with pytest.raises(SecurityError):
            channel.unseal(second)  # out of order

    def test_tamper_rejected(self, stack):
        enclave, server = stack
        channel = SecureChannel.establish(1, enclave, server, seed=2)
        blob = bytearray(channel.seal(b"secret"))
        blob[-1] ^= 0xFF
        with pytest.raises(SecurityError):
            channel.unseal(bytes(blob))

    def test_channels_are_isolated(self, stack):
        """Party 2 cannot read party 1's ciphertexts."""
        enclave, server = stack
        ch1 = SecureChannel.establish(1, enclave, server, seed=2)
        ch2 = SecureChannel.establish(2, enclave, server, seed=3)
        blob = ch1.seal(b"mine")
        with pytest.raises(SecurityError):
            ch2.unseal(blob)
