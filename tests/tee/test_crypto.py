"""Simulated crypto: DH agreement, authenticated encryption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.exceptions import ConfigurationError, SecurityError
from repro.tee import DiffieHellmanKeyPair, decrypt, derive_key, encrypt
from repro.tee.crypto import DH_PRIME, shared_secret


class TestDiffieHellman:
    def test_agreement(self):
        alice = DiffieHellmanKeyPair(seed=1)
        bob = DiffieHellmanKeyPair(seed=2)
        assert alice.shared_with(bob.public) == bob.shared_with(alice.public)

    def test_different_pairs_different_secrets(self):
        alice = DiffieHellmanKeyPair(seed=1)
        bob = DiffieHellmanKeyPair(seed=2)
        eve = DiffieHellmanKeyPair(seed=3)
        assert alice.shared_with(bob.public) != alice.shared_with(eve.public)

    def test_deterministic_by_seed(self):
        assert DiffieHellmanKeyPair(seed=7).public == \
            DiffieHellmanKeyPair(seed=7).public

    def test_unseeded_random(self):
        assert DiffieHellmanKeyPair().public != DiffieHellmanKeyPair().public

    def test_public_in_group(self):
        kp = DiffieHellmanKeyPair(seed=0)
        assert 1 < kp.public < DH_PRIME

    def test_degenerate_peer_rejected(self):
        kp = DiffieHellmanKeyPair(seed=0)
        with pytest.raises(SecurityError):
            shared_secret(3, 1)
        with pytest.raises(SecurityError):
            kp.shared_with(0)
        with pytest.raises(SecurityError):
            kp.shared_with(DH_PRIME - 1)


class TestDeriveKey:
    def test_label_separates_keys(self):
        secret = b"x" * 32
        assert derive_key(secret, "enc") != derive_key(secret, "mac")

    def test_deterministic(self):
        assert derive_key(b"s" * 16, "a") == derive_key(b"s" * 16, "a")

    def test_length(self):
        assert len(derive_key(b"s" * 16, "a", length=16)) == 16

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            derive_key(b"s", "a", length=0)


KEY = b"0123456789abcdef0123456789abcdef"


class TestEncryptDecrypt:
    def test_round_trip(self):
        message = b"label distribution: [10, 2, 0, 1]"
        assert decrypt(KEY, encrypt(KEY, message)) == message

    def test_empty_payload(self):
        assert decrypt(KEY, encrypt(KEY, b"")) == b""

    def test_nonce_randomised(self):
        assert encrypt(KEY, b"same") != encrypt(KEY, b"same")

    def test_tamper_detected(self):
        blob = bytearray(encrypt(KEY, b"secret"))
        blob[20] ^= 0x01
        with pytest.raises(SecurityError):
            decrypt(KEY, bytes(blob))

    def test_truncation_detected(self):
        blob = encrypt(KEY, b"secret")
        with pytest.raises(SecurityError):
            decrypt(KEY, blob[:10])

    def test_wrong_key_detected(self):
        blob = encrypt(KEY, b"secret")
        with pytest.raises(SecurityError):
            decrypt(b"f" * 32, blob)

    def test_associated_data_bound(self):
        blob = encrypt(KEY, b"payload", associated_data=b"seq=1")
        assert decrypt(KEY, blob, associated_data=b"seq=1") == b"payload"
        with pytest.raises(SecurityError):
            decrypt(KEY, blob, associated_data=b"seq=2")

    def test_short_key_rejected(self):
        with pytest.raises(ConfigurationError):
            encrypt(b"short", b"x")

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=300))
    def test_property_round_trip(self, payload):
        assert decrypt(KEY, encrypt(KEY, payload)) == payload
