"""Backend threading through the experiment layer + golden regression.

The golden digests below were captured from the pre-backend engine (the
monolithic ``_run_round``) on the seed configurations; the refactored
engine with the default ``serial`` backend must reproduce them
bit-for-bit.
"""

import hashlib

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.experiments import run_experiment, smoke_config
from repro.fl.history import TrainingHistory


def history_digest(history: TrainingHistory) -> str:
    """Stable fingerprint of every field of every round record."""
    h = hashlib.sha256()
    for r in history.records:
        h.update(repr((
            r.round_index, r.cohort, r.received, r.stragglers,
            round(r.balanced_accuracy, 12),
            round(r.plain_accuracy, 12),
            tuple(round(x, 12) for x in r.per_label_recall),
            "nan" if np.isnan(r.mean_train_loss)
            else round(r.mean_train_loss, 12),
            r.comm_bytes,
            round(r.round_duration, 12))).encode())
    return h.hexdigest()


#: sha256 digests of smoke-config histories produced by the pre-backend
#: engine (captured before the execution-layer refactor).
GOLDEN = {
    "ecg-flips":
        "07ffdf63af3c07311311f952a0520085f315932a69e10057e84309ce522c0517",
    "ecg-random-straggle":
        "c943aadbcf750f4076f0ee8bb570cb101d92332de14dbf0fb07acb703b37051c",
    "femnist-oort":
        "991e7872b94e23d8ac7437ff524ef3a7cae9717fc0d9bb1ecab96152e57092a0",
}


#: sha256 digests of the same smoke-config histories under the batched
#: backend.  Batched execution is deterministic but (by design) not
#: bit-identical to serial — the vectorized cohort trainer re-orders
#: float reductions — so it pins its own digests.  Captured from the
#: batched backend before the struct-of-arrays planning refactor; the
#: vectorized planner must reproduce them bit-for-bit.
GOLDEN_BATCHED = {
    "ecg-flips":
        "a1fbee31b1d1b1511f67b59af68de3ef2bb8af284f1e2e1bb66a9b1fa3fce1c4",
    "ecg-random-straggle":
        "8922a3c98e91f1d8e63320d59bd88e21d8569960f577a1ea38cf98e3de1616c0",
    "femnist-oort":
        "7960fc04a65f02addb03f89b5fa79468f1cf7b4e26ebd42c6501e9d74a05189a",
}


def golden_configs():
    return {
        "ecg-flips": smoke_config("ecg"),
        "ecg-random-straggle": smoke_config(
            "ecg", selector="random", straggler_rate=0.25,
            participation=0.5),
        "femnist-oort": smoke_config("femnist", selector="oort", seed=1),
    }


class TestGoldenRegression:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_serial_backend_bit_identical_to_pre_refactor(self, name):
        config = golden_configs()[name]
        assert config.backend == "serial"
        assert history_digest(run_experiment(config)) == GOLDEN[name]

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_parallel_backend_matches_golden(self, name):
        """The zero-copy dispatch path (shared-memory broadcast, bound
        config, packed update arrays) must leave the parallel backend
        bit-for-bit on the pre-refactor digests."""
        config = golden_configs()[name].with_overrides(
            backend="parallel", n_workers=2)
        assert history_digest(run_experiment(config)) == GOLDEN[name]

    @pytest.mark.parametrize("name", sorted(GOLDEN_BATCHED))
    def test_batched_backend_matches_golden(self, name):
        """All three executors are pinned: the batched backend's own
        digests must survive the struct-of-arrays planning refactor."""
        config = golden_configs()[name].with_overrides(backend="batched")
        assert history_digest(run_experiment(config)) == \
            GOLDEN_BATCHED[name]


class TestBackendThreading:
    def test_parallel_matches_serial_through_runner(self, smoke):
        serial = run_experiment(smoke)
        parallel = run_experiment(
            smoke.with_overrides(backend="parallel", n_workers=2))
        assert history_digest(serial) == history_digest(parallel)

    def test_batched_runs_and_is_deterministic(self, smoke):
        a = run_experiment(smoke.with_overrides(backend="batched"))
        b = run_experiment(smoke.with_overrides(backend="batched"))
        assert history_digest(a) == history_digest(b)

    def test_eval_every_final_round_exact(self, smoke):
        exact = run_experiment(smoke)
        amortized = run_experiment(
            smoke.with_overrides(eval_every=3, eval_subsample=100))
        assert amortized.records[-1].balanced_accuracy == \
            exact.records[-1].balanced_accuracy
        assert amortized.records[-1].per_label_recall == \
            exact.records[-1].per_label_recall

    def test_config_validation(self, smoke):
        with pytest.raises(ConfigurationError):
            smoke.with_overrides(backend="gpu")
        with pytest.raises(ConfigurationError):
            smoke.with_overrides(n_workers=2)  # needs backend='parallel'
        with pytest.raises(ConfigurationError):
            smoke.with_overrides(eval_every=0)
        with pytest.raises(ConfigurationError):
            smoke.with_overrides(eval_subsample=0)

    def test_backend_in_cache_key(self, smoke):
        assert smoke.cache_key() != \
            smoke.with_overrides(backend="batched").cache_key()
        assert smoke.cache_key() != \
            smoke.with_overrides(eval_every=5).cache_key()
