"""Figure regeneration harness (Figs. 2, 5–13)."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.experiments import (
    convergence_figure,
    elbow_figure,
    format_figure,
    underrepresented_figure,
)
from repro.experiments.figures import FIGURE_DATASET, FigureResult


class TestFigureResult:
    def test_add_checks_length(self):
        fig = FigureResult("f", np.arange(3))
        with pytest.raises(ConfigurationError):
            fig.add("s", np.zeros(4))

    def test_figure_dataset_map(self):
        assert FIGURE_DATASET[5] == ("ecg", False)
        assert FIGURE_DATASET[6] == ("ecg", True)
        assert FIGURE_DATASET[12] == ("fashion", True)


class TestConvergenceFigure:
    def test_no_straggler_panel_has_five_series(self):
        fig = convergence_figure("ecg", preset="smoke")
        assert set(fig.series) == {"random", "flips", "oort", "grad_cls",
                                   "tifl"}
        for series in fig.series.values():
            assert series.shape == fig.x.shape
            assert np.isfinite(series).all()

    def test_straggler_panel_series_names(self):
        fig = convergence_figure("ecg", preset="smoke",
                                 straggler_rates=(0.1, 0.2))
        assert "flips 10% stragglers" in fig.series
        assert "tifl 20% stragglers" in fig.series
        assert len(fig.series) == 6

    def test_x_axis_is_rounds(self):
        fig = convergence_figure("ecg", preset="smoke")
        assert fig.x[0] == 1
        assert len(fig.x) == fig.series["flips"].shape[0]


class TestElbowFigure:
    def test_series_and_annotation(self):
        fig = elbow_figure("ecg", n_parties=16, repeats=2, preset="smoke")
        assert "davies_bouldin" in fig.series
        assert fig.annotations["elbow_k"] >= 2
        assert len(fig.x) == len(fig.series["davies_bouldin"])


class TestUnderrepresentedFigure:
    def test_ecg_arrhythmia_series(self):
        fig = underrepresented_figure("ecg", preset="smoke")
        assert set(fig.series) == {"random", "flips", "oort", "grad_cls",
                                   "tifl"}
        assert fig.annotations["labels"] == ("S", "V", "F", "Q")
        for series in fig.series.values():
            assert np.all((series[~np.isnan(series)] >= 0)
                          & (series[~np.isnan(series)] <= 1))

    def test_skin_bcc_series(self):
        fig = underrepresented_figure("skin", preset="smoke")
        assert fig.annotations["labels"] == ("bcc",)

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            underrepresented_figure("femnist", preset="smoke")


class TestFormatFigure:
    def test_csv_layout(self):
        fig = FigureResult("demo", np.array([1.0, 2.0]))
        fig.add("a", np.array([0.1, 0.2]))
        fig.annotations["note"] = 7
        text = format_figure(fig)
        lines = text.splitlines()
        assert lines[0] == "# demo"
        assert "# note: 7" in lines
        assert "x,a" in lines
        assert lines[-1].startswith("2,")
