"""Experiment configuration and presets."""

import pytest

from repro.common.exceptions import ConfigurationError
from repro.experiments import (
    BENCH_TARGETS,
    ExperimentConfig,
    bench_config,
    paper_config,
    smoke_config,
)


class TestExperimentConfig:
    def test_parties_per_round(self):
        config = ExperimentConfig("ecg", participation=0.15, n_parties=80)
        assert config.parties_per_round == 12

    def test_parties_per_round_floor_one(self):
        config = ExperimentConfig("ecg", participation=0.01, n_parties=10)
        assert config.parties_per_round == 1

    def test_oort_overprovision_only_with_stragglers(self):
        assert ExperimentConfig("ecg").oort_overprovision == 1.0
        assert ExperimentConfig(
            "ecg", straggler_rate=0.1).oort_overprovision == 1.3

    def test_cache_key_distinguishes_fields(self):
        a = ExperimentConfig("ecg", selector="flips")
        b = ExperimentConfig("ecg", selector="random")
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() == ExperimentConfig(
            "ecg", selector="flips").cache_key()

    def test_invalid_dataset(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig("cifar")

    def test_invalid_selector(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig("ecg", selector="psychic")

    def test_invalid_participation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig("ecg", participation=0.0)

    def test_with_overrides(self):
        config = ExperimentConfig("ecg").with_overrides(alpha=0.6)
        assert config.alpha == 0.6


class TestPresets:
    def test_bench_targets_cover_datasets(self):
        assert set(BENCH_TARGETS) == {"ecg", "skin", "femnist", "fashion"}

    def test_bench_rounds_ordering(self):
        """Medical datasets get the longer horizon, as in the paper."""
        assert bench_config("ecg").rounds > bench_config("femnist").rounds

    def test_paper_preset_uses_paper_models(self):
        assert paper_config("ecg").model == "cnn1d"
        assert paper_config("skin").model == "densenet_lite"
        assert paper_config("femnist").model == "lenet5"
        assert paper_config("ecg").rounds == 400
        assert paper_config("ecg").n_parties == 200

    def test_paper_lr_decay_schedule(self):
        assert paper_config("ecg").lr_decay_every == 20
        assert paper_config("skin").lr_decay_every == 30

    def test_smoke_is_tiny(self):
        config = smoke_config()
        assert config.n_parties <= 16
        assert config.rounds <= 10

    def test_preset_overrides(self):
        config = bench_config("ecg", rounds=5, selector="oort")
        assert config.rounds == 5 and config.selector == "oort"
