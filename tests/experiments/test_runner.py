"""Experiment runner: selector wiring, caching, repetition."""

import numpy as np
import pytest

from repro.core import FlipsSelector
from repro.experiments import (
    build_federation_for,
    build_selector,
    clear_cache,
    mean_accuracy_series,
    run_cached,
    run_experiment,
    run_repeated,
    smoke_config,
)
from repro.selection import (
    GradClusSelection,
    OortSelection,
    PowerOfChoiceSelection,
    RandomSelection,
    TiflSelection,
)


class TestFederationCache:
    def test_same_config_same_object(self, smoke):
        assert build_federation_for(smoke) is build_federation_for(smoke)

    def test_selector_does_not_change_federation(self, smoke):
        a = build_federation_for(smoke)
        b = build_federation_for(smoke.with_overrides(selector="random"))
        assert a is b

    def test_alpha_changes_federation(self, smoke):
        a = build_federation_for(smoke)
        b = build_federation_for(smoke.with_overrides(alpha=0.9))
        assert a is not b


class TestBuildSelector:
    @pytest.mark.parametrize("name,cls", [
        ("random", RandomSelection),
        ("flips", FlipsSelector),
        ("oort", OortSelection),
        ("grad_cls", GradClusSelection),
        ("tifl", TiflSelection),
        ("power_of_choice", PowerOfChoiceSelection),
    ])
    def test_each_selector(self, smoke, name, cls):
        fed = build_federation_for(smoke)
        selector = build_selector(smoke.with_overrides(selector=name), fed)
        assert isinstance(selector, cls)

    def test_oort_overprovision_wired(self, smoke):
        fed = build_federation_for(smoke)
        oort = build_selector(
            smoke.with_overrides(selector="oort", straggler_rate=0.1), fed)
        assert oort.overprovision == 1.3


class TestRunExperiment:
    def test_produces_history(self, smoke):
        history = run_experiment(smoke)
        assert len(history) == smoke.rounds
        assert np.isfinite(history.accuracy_series()).all()

    def test_deterministic(self, smoke):
        a = run_experiment(smoke)
        b = run_experiment(smoke)
        assert np.array_equal(a.accuracy_series(), b.accuracy_series())

    def test_straggler_config_applied(self, smoke):
        # participation raised so round(rate × cohort) is at least one.
        history = run_experiment(
            smoke.with_overrides(straggler_rate=0.25, participation=0.5))
        assert history.straggler_count() > 0

    def test_selectors_share_data_and_seeds(self, smoke):
        """Identical cohorts → identical training: only the selection
        policy may differ between strategies."""
        flips = run_experiment(smoke.with_overrides(selector="flips"))
        random = run_experiment(smoke.with_overrides(selector="random"))
        # Same federation, same initial model: round-1 cohorts differ but
        # both start from the same global accuracy baseline.
        assert flips.records[0].cohort != random.records[0].cohort or \
            flips.records[0].balanced_accuracy == pytest.approx(
                random.records[0].balanced_accuracy, abs=0.2)


class TestRunCache:
    def test_cache_hit_is_same_object(self, smoke):
        clear_cache()
        a = run_cached(smoke)
        b = run_cached(smoke)
        assert a is b

    def test_different_seed_misses(self, smoke):
        clear_cache()
        a = run_cached(smoke)
        b = run_cached(smoke.with_overrides(seed=smoke.seed + 1))
        assert a is not b

    def test_clear_cache(self, smoke):
        a = run_cached(smoke)
        clear_cache()
        assert run_cached(smoke) is not a


class TestRepetition:
    def test_run_repeated_lengths(self, smoke):
        histories = run_repeated(smoke, seeds=(0, 1))
        assert len(histories) == 2

    def test_mean_series(self, smoke):
        histories = run_repeated(smoke, seeds=(0, 1))
        mean = mean_accuracy_series(histories)
        assert mean.shape == (smoke.rounds,)
        manual = (histories[0].accuracy_series()
                  + histories[1].accuracy_series()) / 2
        assert np.allclose(mean, manual)

    def test_empty_seeds_rejected(self, smoke):
        from repro.common.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            run_repeated(smoke, seeds=())
