"""Table regeneration harness (Tables 1–24)."""

import pytest

from repro.common.exceptions import ConfigurationError
from repro.experiments import TABLE_INDEX, format_table, generate_table
from repro.experiments.tables import (
    BASE_SELECTORS,
    ROW_SETTINGS,
    STRAGGLER_RATES,
    STRAGGLER_SELECTORS,
    TableSpec,
)


class TestTableIndex:
    def test_24_tables(self):
        assert sorted(TABLE_INDEX) == list(range(1, 25))

    def test_algorithm_blocks(self):
        assert TABLE_INDEX[1].algorithm == "fedyogi"
        assert TABLE_INDEX[9].algorithm == "fedprox"
        assert TABLE_INDEX[17].algorithm == "fedavg"

    def test_dataset_order_within_block(self):
        assert [TABLE_INDEX[i].dataset for i in (1, 3, 5, 7)] == \
            ["ecg", "skin", "femnist", "fashion"]

    def test_metric_alternates(self):
        assert TABLE_INDEX[1].metric == "rounds"
        assert TABLE_INDEX[2].metric == "peak"

    def test_titles_match_paper_phrasing(self):
        assert "Rounds required" in TABLE_INDEX[1].title
        assert "Highest accuracy" in TABLE_INDEX[2].title

    def test_invalid_metric(self):
        with pytest.raises(ConfigurationError):
            TableSpec(99, "ecg", "fedavg", "latency")


@pytest.fixture(scope="module")
def table_one():
    return generate_table(TABLE_INDEX[1], preset="smoke")


@pytest.fixture(scope="module")
def table_two():
    return generate_table(TABLE_INDEX[2], preset="smoke")


class TestGenerateTable:
    def test_all_cells_present(self, table_one):
        expected = len(ROW_SETTINGS) * (
            len(BASE_SELECTORS)
            + len(STRAGGLER_RATES) * len(STRAGGLER_SELECTORS))
        assert len(table_one.cells) == expected

    def test_rounds_cells_valid(self, table_one):
        for value in table_one.cells.values():
            assert value is None or (
                1 <= value <= table_one.rounds_budget)

    def test_peak_cells_valid(self, table_two):
        for value in table_two.cells.values():
            assert 0.0 <= value <= 1.0

    def test_winner_helper(self, table_two):
        winner = table_two.winner(0.3, 0.20)
        assert winner in BASE_SELECTORS

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            generate_table(TABLE_INDEX[1], preset="galaxy")


class TestFormatTable:
    def test_contains_title_and_rows(self, table_one):
        text = format_table(table_one)
        assert "Table 1" in text
        assert "random" in text and "flips" in text
        assert text.count("%") >= 4  # one per row setting

    def test_rounds_rendering(self, table_one):
        text = format_table(table_one)
        # every rounds cell is either an int or the ">budget" marker
        assert (">" + str(table_one.rounds_budget)) in text or \
            any(ch.isdigit() for ch in text)

    def test_peak_rendering_percent(self, table_two):
        text = format_table(table_two)
        assert "." in text  # accuracy cells carry decimals
