"""Dependency-free docstring linter for the public API surface.

The container this repo targets ships no ``ruff`` or ``pydocstyle``, so
CI enforces docstring coverage with this self-contained AST walker
instead.  It applies the pydocstyle rules that matter for an API
reference:

* D100 — missing module docstring;
* D101 — missing docstring on a public class;
* D102 — missing docstring on a public method;
* D103 — missing docstring on a public function.

"Public" follows the usual convention: names not starting with ``_``,
inside classes that are themselves public.  ``__init__`` and other
dunders are exempt (the class docstring documents construction);
``@overload`` stubs and abstract one-liner ``...`` bodies are not
exempt — if they are part of the public surface they need a docstring
somewhere, and the linter accepts docstring inheritance only through
``@property`` wrappers of documented abstract methods being *absent*
— i.e. it does not chase the MRO, deliberately: the rendered API page
does not either.

Usage::

    python tools/lint_docstrings.py src/repro/fl src/repro/selection

Exit status 0 when clean, 1 with one ``path:line: code name`` line per
violation otherwise.  ``tests/test_docstring_lint.py`` runs the same
check inside the tier-1 suite, so CI and local runs cannot drift.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

__all__ = ["check_file", "check_paths", "main"]


def _has_docstring(node) -> bool:
    return ast.get_docstring(node, clean=False) is not None


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _walk_body(body, *, inside_class: bool, violations, path: Path) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = node.name
            if _is_dunder(name) or not _is_public(name):
                continue
            if not _has_docstring(node):
                code = "D102" if inside_class else "D103"
                kind = "method" if inside_class else "function"
                violations.append(
                    f"{path}:{node.lineno}: {code} missing docstring on "
                    f"public {kind} {name!r}")
        elif isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            if not _has_docstring(node):
                violations.append(
                    f"{path}:{node.lineno}: D101 missing docstring on "
                    f"public class {node.name!r}")
            _walk_body(node.body, inside_class=True,
                       violations=violations, path=path)


def check_file(path: Path) -> "list[str]":
    """Lint one Python file; returns a list of violation lines."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    violations: list[str] = []
    if not _has_docstring(tree):
        violations.append(f"{path}:1: D100 missing module docstring")
    _walk_body(tree.body, inside_class=False,
               violations=violations, path=path)
    return violations


def check_paths(paths: "list[str | Path]") -> "list[str]":
    """Lint every ``.py`` file under the given files/directories."""
    violations: list[str] = []
    for raw in paths:
        path = Path(raw)
        files = (sorted(path.rglob("*.py")) if path.is_dir() else [path])
        if not files:
            raise FileNotFoundError(f"no Python files under {path}")
        for file in files:
            violations.extend(check_file(file))
    return violations


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: lint_docstrings.py PATH [PATH ...]", file=sys.stderr)
        return 2
    violations = check_paths(args)
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} docstring violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
