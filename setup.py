"""Legacy setup shim.

``pip install -e .`` needs the ``wheel`` package for PEP 517 editable
builds; in fully offline environments without it, install with
``python setup.py develop`` instead — same result.
"""

from setuptools import setup

setup()
